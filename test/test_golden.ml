(* Golden byte-identity regression for the default objective.

   PR 3/8/9 enforced "new machinery must not move a byte of historical
   output" in the bench gates; this suite pins the same contract inside
   [dune runtest]: with the default objective ([max_yield]) and
   [eps_power = 0], every rule x engine x jobs 1/2/4 x tape/walk x obs
   on/off run must reproduce the fingerprints captured from the
   pre-dominance-refactor seed (commit 620e644) exactly — %.17g floats,
   full assignment, candidate counts.  Any drift in the shared
   [Bufins.Dominance] sweep, the power threading or the convex gating
   shows up here as a fingerprint mismatch. *)

let tech = Device.Tech.default_65nm

let grid die =
  Varmodel.Grid.create ~width_um:die ~height_um:die ~pitch_um:500.0
    ~range_um:2000.0

let model die =
  Varmodel.Model.create ~mode:Varmodel.Model.Wid
    ~spatial:Varmodel.Model.default_heterogeneous ~grid:(grid die) ()

let with_pool jobs f =
  let pool = Exec.Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Exec.Pool.shutdown pool) (fun () -> f pool)

let with_obs enabled f =
  let was = Obs.Control.on () in
  if enabled then Obs.Control.enable () else Obs.Control.disable ();
  Fun.protect f ~finally:(fun () ->
      if was then Obs.Control.enable () else Obs.Control.disable ())

type mode = { tape : bool; jobs : int option; obs : bool }

(* jobs 1/2/4 and the pool-less sequential path, walk and tape, obs on
   and off all appear at least once. *)
let variants =
  [
    { tape = false; jobs = None; obs = false };
    { tape = false; jobs = Some 1; obs = true };
    { tape = false; jobs = Some 2; obs = false };
    { tape = false; jobs = Some 4; obs = true };
    { tape = true; jobs = None; obs = true };
    { tape = true; jobs = Some 1; obs = false };
    { tape = true; jobs = Some 2; obs = true };
    { tape = true; jobs = Some 4; obs = false };
  ]

let variant_name m =
  Printf.sprintf "%s jobs=%s obs=%b"
    (if m.tape then "tape" else "walk")
    (match m.jobs with None -> "seq" | Some j -> string_of_int j)
    m.obs

let f17 = Printf.sprintf "%.17g"

let fp_buffers bufs =
  String.concat ";"
    (List.map
       (fun (n, b) -> Printf.sprintf "%d:%s" n b.Device.Buffer.name)
       bufs)

let fp_widths ws =
  String.concat ";"
    (List.map (fun (n, w) -> Printf.sprintf "%d:%s" n w.Device.Wire_lib.name) ws)

let fp_canonical (r : Bufins.Engine.result) =
  Printf.sprintf "rat=%s/%s buf=[%s] w=[%s] llm=%b peak=%d total=%d"
    (f17 (Linform.mean r.Bufins.Engine.root_rat))
    (f17 (Linform.std r.Bufins.Engine.root_rat))
    (fp_buffers r.Bufins.Engine.buffers)
    (fp_widths r.Bufins.Engine.widths)
    r.Bufins.Engine.load_limit_met
    r.Bufins.Engine.stats.Bufins.Engine.peak_candidates
    r.Bufins.Engine.stats.Bufins.Engine.total_candidates

let fp_sample (r : Sample.Engine.result) =
  Printf.sprintf "rat=%s/%s y=%s buf=[%s] w=[%s] llm=%b peak=%d total=%d"
    (f17 r.Sample.Engine.sampled_mean)
    (f17 r.Sample.Engine.sampled_std)
    (f17 r.Sample.Engine.rat_at_yield)
    (fp_buffers r.Sample.Engine.buffers)
    (fp_widths r.Sample.Engine.widths)
    r.Sample.Engine.load_limit_met
    r.Sample.Engine.stats.Bufins.Engine.peak_candidates
    r.Sample.Engine.stats.Bufins.Engine.total_candidates

let fp_prob (r : Bufins.Probabilistic.result) =
  Printf.sprintf "rat=%s/%s p05=%s buf=[%s] peak=%d"
    (f17 r.Bufins.Probabilistic.rat_mean)
    (f17 r.Bufins.Probabilistic.rat_std)
    (f17 r.Bufins.Probabilistic.rat_p05)
    (fp_buffers r.Bufins.Probabilistic.buffers)
    r.Bufins.Probabilistic.peak_candidates

(* Each case maps a run mode to its fingerprint; the contract is that
   the fingerprint does not depend on the mode. *)

let canonical_case ~rule ~library ~sinks ~seed m =
  let die = 4000.0 in
  let tree = Rctree.Generate.random_steiner ~seed ~sinks ~die_um:die () in
  let cfg =
    { (Bufins.Engine.default_config ~rule ()) with Bufins.Engine.tech; library }
  in
  let run pool =
    if m.tape then
      Bufins.Engine.run_tape ?pool ~grain:2 cfg ~model:(model die)
        (Compile.Tape.compile tree)
    else Bufins.Engine.run ?pool ~grain:2 cfg ~model:(model die) tree
  in
  let r =
    match m.jobs with
    | None -> run None
    | Some jobs -> with_pool jobs (fun pool -> run (Some pool))
  in
  fp_canonical r

let sample_case ~samples ~mseed ~relax ~library ~sinks ~seed m =
  let die = 4000.0 in
  let tree = Rctree.Generate.random_steiner ~seed ~sinks ~die_um:die () in
  let cfg =
    {
      (Sample.Engine.default_config ~samples ~seed:mseed ~relax ()) with
      Sample.Engine.tech;
      library;
    }
  in
  let run pool =
    if m.tape then
      Sample.Engine.run_tape ?pool ~grain:2 cfg ~model:(model die)
        (Compile.Tape.compile tree)
    else Sample.Engine.run ?pool ~grain:2 cfg ~model:(model die) tree
  in
  let r =
    match m.jobs with
    | None -> run None
    | Some jobs -> with_pool jobs (fun pool -> run (Some pool))
  in
  fp_sample r

let prob_case ~heuristic ~sinks ~seed m =
  let die = 4000.0 in
  let tree = Rctree.Generate.random_steiner ~seed ~sinks ~die_um:die () in
  let cfg = Bufins.Probabilistic.default_config ~heuristic () in
  let run pool =
    if m.tape then
      Bufins.Probabilistic.run_tape ?pool ~grain:2 cfg
        (Compile.Tape.compile tree)
    else Bufins.Probabilistic.run ?pool ~grain:2 cfg tree
  in
  let r =
    match m.jobs with
    | None -> run None
    | Some jobs -> with_pool jobs (fun pool -> run (Some pool))
  in
  fp_prob r

let cases =
  [
    ( "det",
      canonical_case ~rule:Bufins.Prune.deterministic
        ~library:Device.Buffer.default_library ~sinks:20 ~seed:211 );
    ( "2p",
      canonical_case
        ~rule:(Bufins.Prune.two_param ())
        ~library:Device.Buffer.default_library ~sinks:20 ~seed:211 );
    ( "2p-hi",
      canonical_case
        ~rule:(Bufins.Prune.two_param ~p_l:0.7 ~p_t:0.9 ())
        ~library:Device.Buffer.default_library ~sinks:20 ~seed:211 );
    ( "1p",
      canonical_case
        ~rule:(Bufins.Prune.one_param ~alpha:0.9)
        ~library:Device.Buffer.default_library ~sinks:20 ~seed:211 );
    ( "4p",
      canonical_case
        ~rule:(Bufins.Prune.four_param ())
        ~library:Device.Buffer.default_library ~sinks:8 ~seed:211 );
    ( "det-b5",
      canonical_case ~rule:Bufins.Prune.deterministic
        ~library:(Device.Buffer.synth_library ~btypes:5)
        ~sinks:16 ~seed:212 );
    ( "2p-b5",
      canonical_case
        ~rule:(Bufins.Prune.two_param ())
        ~library:(Device.Buffer.synth_library ~btypes:5)
        ~sinks:16 ~seed:212 );
    ( "sample-64",
      sample_case ~samples:64 ~mseed:1 ~relax:1.0
        ~library:Device.Buffer.default_library ~sinks:16 ~seed:7 );
    ( "sample-64-relax",
      sample_case ~samples:64 ~mseed:1 ~relax:0.9
        ~library:Device.Buffer.default_library ~sinks:16 ~seed:7 );
    ( "sample-32-b4",
      sample_case ~samples:32 ~mseed:3 ~relax:1.0
        ~library:(Device.Buffer.synth_library ~btypes:4)
        ~sinks:12 ~seed:8 );
    ("prob-mean", prob_case ~heuristic:Bufins.Probabilistic.Mean_dominance ~sinks:16 ~seed:305);
    ( "prob-pct",
      prob_case
        ~heuristic:(Bufins.Probabilistic.Percentile_dominance 0.9)
        ~sinks:12 ~seed:305 );
    ( "prob-stoch",
      prob_case ~heuristic:Bufins.Probabilistic.Stochastic_dominance ~sinks:10
        ~seed:306 );
  ]

(* Captured from the seed (sequential walk, obs off) before the
   dominance refactor; see the capture note at the top.  Empty while
   capturing. *)
let expected : (string * string) list =
  [
    ( "det",
      "rat=-1238.0967525690464/35.200153625159352 buf=[37:x16;36:x4;33:x16;31:x16;28:x16;27:x4;24:x16;22:x4;18:x4;13:x16;9:x16;4:x16;2:x16] w=[] llm=true peak=18 total=225" );
    ( "2p",
      "rat=-1238.0967525690464/35.200153625159352 buf=[37:x16;36:x4;33:x16;31:x16;28:x16;27:x4;24:x16;22:x4;18:x4;13:x16;9:x16;4:x16;2:x16] w=[] llm=true peak=18 total=225" );
    ( "2p-hi",
      "rat=-1237.870419532348/33.567917227452007 buf=[37:x16;36:x4;33:x16;31:x16;28:x16;27:x4;24:x16;22:x4;18:x4;13:x16;9:x4;4:x16;2:x16] w=[] llm=true peak=699 total=1773" );
    ( "1p",
      "rat=-1245.0879812171065/42.884580975062001 buf=[37:x16;36:x4;33:x16;31:x16;28:x16;27:x4;24:x16;22:x4;18:x16;17:x4;14:x16;12:x16;9:x16;8:x4;5:x16;3:x16;2:x16] w=[] llm=true peak=17 total=226" );
    ( "4p",
      "rat=-1033.9176178252599/32.848687673171113 buf=[15:x4;14:x4;10:x16;9:x16;6:x16;3:x16;2:x16] w=[] llm=true peak=35 total=141" );
    ( "det-b5",
      "rat=-1119.6810911441805/33.596737109835779 buf=[29:buf2;28:inv3;27:inv3;26:inv3;25:inv3;24:inv3;23:inv3;22:inv3;21:inv3;20:inv3;19:inv3;18:inv3;17:inv3;16:inv3;15:inv3;14:inv3;13:inv3;12:inv3;11:inv3;10:inv3;9:inv3;8:inv3;7:inv3;6:inv3;5:inv3;4:inv3;3:inv3;2:inv3] w=[] llm=true peak=47 total=359" );
    ( "2p-b5",
      "rat=-1119.6810911441805/33.596737109835779 buf=[29:buf2;28:inv3;27:inv3;26:inv3;25:inv3;24:inv3;23:inv3;22:inv3;21:inv3;20:inv3;19:inv3;18:inv3;17:inv3;16:inv3;15:inv3;14:inv3;13:inv3;12:inv3;11:inv3;10:inv3;9:inv3;8:inv3;7:inv3;6:inv3;5:inv3;4:inv3;3:inv3;2:inv3] w=[] llm=true peak=47 total=359" );
    ( "sample-64",
      "rat=-1283.4716148669841/46.757429375160669 y=-1352.4464944835011 buf=[29:x4;26:x16;25:x16;18:x16;17:x16;14:x16;11:x16;10:x16;9:x16;8:x16;4:x4;3:x16;2:x16] w=[] llm=true peak=81 total=486" );
    ( "sample-64-relax",
      "rat=-1283.4716148669841/46.757429375160669 y=-1352.4464944835011 buf=[29:x4;26:x16;25:x16;18:x16;17:x16;14:x16;11:x16;10:x16;9:x16;8:x16;4:x4;3:x16;2:x16] w=[] llm=true peak=31 total=270" );
    ( "sample-32-b4",
      "rat=-1009.4223765267278/19.990306450845544 y=-1040.3915805160871 buf=[23:inv1;20:inv3;14:inv3;13:inv3;12:inv3;11:inv3;10:inv3;8:inv3;7:inv1;6:inv3;5:inv3;3:inv3;2:buf2] w=[] llm=true peak=153 total=492" );
    ( "prob-mean",
      "rat=-1500.7756637541468/13.176016412529139 p05=-1522.4622960273625 buf=[29:x4;26:x16;25:x16;22:x4;19:x16;18:x16;17:x4;14:x4;11:x16;10:x16;7:x4;6:x16;5:x16;4:x16;2:x16] peak=15" );
    ( "prob-pct",
      "rat=-1450.8649185676918/19.184301023853052 p05=-1484.0980454681317 buf=[23:x4;20:x16;19:x4;18:x16;17:x16;16:x16;14:x16;13:x4;12:x4;9:x16;8:x16;7:x16;4:x16;2:x16] peak=17" );
    ( "prob-stoch",
      "rat=-1144.3141084189654/12.333056771832965 p05=-1165.158440286154 buf=[17:x16;12:x16;11:x16;8:x16;7:x16;6:x16;5:x16;2:x16] peak=25" );
  ]

(* Capture helper: VARBUF_GOLDEN_DUMP=FILE writes the baseline
   fingerprints of every case, one "name<TAB>fingerprint" line each,
   using the sequential tree-walk variant. *)
let () =
  match Sys.getenv_opt "VARBUF_GOLDEN_DUMP" with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    List.iter
      (fun (name, case) ->
        Printf.fprintf oc "%s\t%s\n" name
          (case { tape = false; jobs = None; obs = false }))
      cases;
    close_out oc

let test_case_fingerprint name case () =
  match List.assoc_opt name expected with
  | None ->
    if expected <> [] then Alcotest.failf "no golden fingerprint for %s" name
  | Some want ->
    List.iter
      (fun m ->
        let got = if m.obs then with_obs true (fun () -> case m) else case m in
        Alcotest.(check string)
          (Printf.sprintf "%s %s" name (variant_name m))
          want got)
      variants

let suite =
  List.map
    (fun (name, case) ->
      Alcotest.test_case
        (Printf.sprintf "golden %s" name)
        `Quick
        (test_case_fingerprint name case))
    cases
