(* Tests for the numeric substrate: special functions, normal
   distribution, statistics, linear algebra, RNG and histograms. *)

let check_close ?(eps = 1e-9) what expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| <= %g" what expected got eps)
    true
    (Float.abs (expected -. got) <= eps)

(* ---------- special functions ---------- *)

let test_erf_known_values () =
  (* Reference values to 12+ digits (Abramowitz & Stegun / mpmath). *)
  check_close "erf 0" 0.0 (Numeric.Special.erf 0.0);
  check_close "erf 0.5" 0.5204998778130465 (Numeric.Special.erf 0.5) ~eps:1e-12;
  check_close "erf 1" 0.8427007929497149 (Numeric.Special.erf 1.0) ~eps:1e-12;
  check_close "erf 2" 0.9953222650189527 (Numeric.Special.erf 2.0) ~eps:1e-12;
  check_close "erf 3" 0.9999779095030014 (Numeric.Special.erf 3.0) ~eps:1e-12;
  check_close "erf -1" (-0.8427007929497149) (Numeric.Special.erf (-1.0)) ~eps:1e-12

let test_erfc_known_values () =
  check_close "erfc 0" 1.0 (Numeric.Special.erfc 0.0);
  check_close "erfc 1" 0.15729920705028513 (Numeric.Special.erfc 1.0) ~eps:1e-12;
  check_close "erfc 3" 2.209049699858544e-05 (Numeric.Special.erfc 3.0) ~eps:1e-16;
  check_close "erfc 5" 1.5374597944280347e-12 (Numeric.Special.erfc 5.0) ~eps:1e-22;
  check_close "erfc 10" 2.088487583762545e-45 (Numeric.Special.erfc 10.0) ~eps:1e-55;
  check_close "erfc -2" (2.0 -. 0.004677734981063127)
    (Numeric.Special.erfc (-2.0))
    ~eps:1e-12

let prop_erf_odd =
  QCheck.Test.make ~name:"erf is odd" ~count:500
    QCheck.(float_range (-6.0) 6.0)
    (fun x ->
      Float.abs (Numeric.Special.erf x +. Numeric.Special.erf (-.x)) < 1e-14)

let prop_erf_erfc_complement =
  QCheck.Test.make ~name:"erf + erfc = 1" ~count:500
    QCheck.(float_range (-6.0) 6.0)
    (fun x ->
      Float.abs (Numeric.Special.erf x +. Numeric.Special.erfc x -. 1.0) < 1e-13)

(* ---------- normal distribution ---------- *)

let test_cdf_known_values () =
  check_close "Phi 0" 0.5 (Numeric.Normal.cdf 0.0);
  check_close "Phi 1" 0.8413447460685429 (Numeric.Normal.cdf 1.0) ~eps:1e-12;
  check_close "Phi -1" 0.15865525393145705 (Numeric.Normal.cdf (-1.0)) ~eps:1e-12;
  check_close "Phi 1.96" 0.9750021048517795 (Numeric.Normal.cdf 1.96) ~eps:1e-12;
  check_close "Phi -4" 3.167124183311992e-05 (Numeric.Normal.cdf (-4.0)) ~eps:1e-15

let test_pdf_known_values () =
  check_close "phi 0" 0.3989422804014327 (Numeric.Normal.pdf 0.0) ~eps:1e-14;
  check_close "phi 1" 0.24197072451914337 (Numeric.Normal.pdf 1.0) ~eps:1e-14

let test_quantile_known_values () =
  check_close "q 0.5" 0.0 (Numeric.Normal.quantile 0.5) ~eps:1e-12;
  check_close "q 0.975" 1.959963984540054 (Numeric.Normal.quantile 0.975) ~eps:1e-9;
  check_close "q 0.95" 1.6448536269514722 (Numeric.Normal.quantile 0.95) ~eps:1e-9;
  check_close "q 0.05" (-1.6448536269514722) (Numeric.Normal.quantile 0.05) ~eps:1e-9

let test_quantile_domain () =
  Alcotest.check_raises "p = 0 rejected"
    (Invalid_argument "Normal.quantile: p must lie strictly between 0 and 1")
    (fun () -> ignore (Numeric.Normal.quantile 0.0));
  Alcotest.check_raises "p = 1 rejected"
    (Invalid_argument "Normal.quantile: p must lie strictly between 0 and 1")
    (fun () -> ignore (Numeric.Normal.quantile 1.0))

let prop_quantile_cdf_roundtrip =
  QCheck.Test.make ~name:"cdf (quantile p) = p" ~count:500
    QCheck.(float_range 1e-6 (1.0 -. 1e-6))
    (fun p -> Float.abs (Numeric.Normal.cdf (Numeric.Normal.quantile p) -. p) < 1e-9)

let prop_cdf_monotone =
  QCheck.Test.make ~name:"cdf is monotone" ~count:500
    QCheck.(pair (float_range (-8.0) 8.0) (float_range (-8.0) 8.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Numeric.Normal.cdf lo <= Numeric.Normal.cdf hi)

let test_mu_sigma_helpers () =
  check_close "percentile mean" 10.0 (Numeric.Normal.percentile ~mu:10.0 ~sigma:2.0 0.5)
    ~eps:1e-9;
  check_close "percentile 95"
    (10.0 +. (2.0 *. 1.6448536269514722))
    (Numeric.Normal.percentile ~mu:10.0 ~sigma:2.0 0.95)
    ~eps:1e-8;
  check_close "percentile degenerate" 10.0
    (Numeric.Normal.percentile ~mu:10.0 ~sigma:0.0 0.95);
  check_close "prob_gt_zero sym" 0.5 (Numeric.Normal.prob_gt_zero ~mu:0.0 ~sigma:3.0);
  check_close "prob_gt_zero pos degenerate" 1.0
    (Numeric.Normal.prob_gt_zero ~mu:1.0 ~sigma:0.0);
  check_close "prob_gt_zero neg degenerate" 0.0
    (Numeric.Normal.prob_gt_zero ~mu:(-1.0) ~sigma:0.0);
  check_close "cdf_mu_sigma step below" 0.0
    (Numeric.Normal.cdf_mu_sigma ~mu:5.0 ~sigma:0.0 4.9);
  check_close "cdf_mu_sigma step above" 1.0
    (Numeric.Normal.cdf_mu_sigma ~mu:5.0 ~sigma:0.0 5.1)

(* ---------- statistics ---------- *)

let test_summarize () =
  let s = Numeric.Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "mean" 2.5 s.Numeric.Stats.mean ~eps:1e-12;
  check_close "variance" (5.0 /. 3.0) s.Numeric.Stats.variance ~eps:1e-12;
  check_close "min" 1.0 s.Numeric.Stats.min;
  check_close "max" 4.0 s.Numeric.Stats.max;
  Alcotest.(check int) "count" 4 s.Numeric.Stats.count

let test_summarize_empty () =
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Stats.summarize: empty sample") (fun () ->
      ignore (Numeric.Stats.summarize [||]))

let test_percentile () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_close "p0 = min" 1.0 (Numeric.Stats.percentile xs 0.0);
  check_close "p1 = max" 4.0 (Numeric.Stats.percentile xs 1.0);
  check_close "median" 2.5 (Numeric.Stats.percentile xs 0.5) ~eps:1e-12;
  check_close "single" 7.0 (Numeric.Stats.percentile [| 7.0 |] 0.3)

let test_covariance_correlation () =
  let xs = [| 1.0; 2.0; 3.0 |] and ys = [| 2.0; 4.0; 6.0 |] in
  check_close "cov" 2.0 (Numeric.Stats.covariance xs ys) ~eps:1e-12;
  check_close "corr" 1.0 (Numeric.Stats.correlation xs ys) ~eps:1e-12;
  check_close "anti-corr" (-1.0)
    (Numeric.Stats.correlation xs [| 6.0; 4.0; 2.0 |])
    ~eps:1e-12;
  check_close "degenerate corr" 0.0
    (Numeric.Stats.correlation xs [| 5.0; 5.0; 5.0 |])

let prop_welford_matches_direct =
  QCheck.Test.make ~name:"welford accumulator = batch summary" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-100.0) 100.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let acc = Numeric.Stats.create () in
      Array.iter (Numeric.Stats.add acc) arr;
      let s = Numeric.Stats.summarize arr in
      Float.abs (Numeric.Stats.acc_mean acc -. s.Numeric.Stats.mean) < 1e-9
      && Float.abs (Numeric.Stats.acc_variance acc -. s.Numeric.Stats.variance)
         < 1e-7)

(* ---------- linear algebra ---------- *)

let test_solve () =
  let a = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Numeric.Linalg.solve a [| 5.0; 10.0 |] in
  check_close "x0" 1.0 x.(0) ~eps:1e-12;
  check_close "x1" 3.0 x.(1) ~eps:1e-12

let test_solve_pivoting () =
  (* Requires row exchange: zero on the diagonal. *)
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Numeric.Linalg.solve a [| 2.0; 3.0 |] in
  check_close "x0" 3.0 x.(0) ~eps:1e-12;
  check_close "x1" 2.0 x.(1) ~eps:1e-12

let test_solve_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular rejected"
    (Failure "Linalg.solve: singular matrix") (fun () ->
      ignore (Numeric.Linalg.solve a [| 1.0; 2.0 |]))

let test_fit_line () =
  let pts = Array.init 10 (fun i -> (float_of_int i, 3.0 +. (2.0 *. float_of_int i))) in
  let intercept, slope = Numeric.Linalg.fit_line pts in
  check_close "intercept" 3.0 intercept ~eps:1e-9;
  check_close "slope" 2.0 slope ~eps:1e-9

let test_least_squares_overdetermined () =
  (* y = 1 + 2x with symmetric noise that the LSQ fit must average out. *)
  let a = [| [| 1.0; 0.0 |]; [| 1.0; 1.0 |]; [| 1.0; 2.0 |]; [| 1.0; 3.0 |] |] in
  let b = [| 1.1; 2.9; 5.1; 6.9 |] in
  let x = Numeric.Linalg.least_squares a b in
  check_close "intercept" 1.0 x.(0) ~eps:0.2;
  check_close "slope" 2.0 x.(1) ~eps:0.1

let prop_solve_roundtrip =
  (* Diagonally dominant random systems are well-conditioned. *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 5 in
      let* a =
        array_size (return n)
          (array_size (return n) (float_range (-1.0) 1.0))
      in
      let* b = array_size (return n) (float_range (-10.0) 10.0) in
      let a = Array.mapi (fun i row -> (
        let row = Array.copy row in
        row.(i) <- row.(i) +. 10.0;
        row)) a in
      return (a, b))
  in
  QCheck.Test.make ~name:"solve: a x = b roundtrip" ~count:200
    (QCheck.make gen)
    (fun (a, b) ->
      let x = Numeric.Linalg.solve a b in
      let n = Array.length b in
      let ok = ref true in
      for i = 0 to n - 1 do
        let acc = ref 0.0 in
        for j = 0 to n - 1 do
          acc := !acc +. (a.(i).(j) *. x.(j))
        done;
        if Float.abs (!acc -. b.(i)) > 1e-8 then ok := false
      done;
      !ok)

(* ---------- rng ---------- *)

let test_rng_determinism () =
  let a = Numeric.Rng.create ~seed:9 and b = Numeric.Rng.create ~seed:9 in
  for _ = 1 to 100 do
    check_close "same stream" (Numeric.Rng.gaussian a) (Numeric.Rng.gaussian b)
  done

let test_rng_gaussian_moments () =
  let rng = Numeric.Rng.create ~seed:3 in
  let xs = Array.init 50_000 (fun _ -> Numeric.Rng.gaussian rng) in
  let s = Numeric.Stats.summarize xs in
  check_close "mean ~ 0" 0.0 s.Numeric.Stats.mean ~eps:0.02;
  check_close "std ~ 1" 1.0 s.Numeric.Stats.std ~eps:0.02

let test_rng_uniform_range () =
  let rng = Numeric.Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let x = Numeric.Rng.uniform_range rng ~lo:2.0 ~hi:5.0 in
    Alcotest.(check bool) "in range" true (x >= 2.0 && x < 5.0)
  done

let test_rng_split_independent () =
  let a = Numeric.Rng.create ~seed:11 in
  let b = Numeric.Rng.split a in
  let xs = Array.init 5000 (fun _ -> Numeric.Rng.gaussian a) in
  let ys = Array.init 5000 (fun _ -> Numeric.Rng.gaussian b) in
  let corr = Numeric.Stats.correlation xs ys in
  Alcotest.(check bool) "streams uncorrelated" true (Float.abs corr < 0.05)

(* ---------- histogram ---------- *)

let test_histogram_density_integrates_to_one () =
  let rng = Numeric.Rng.create ~seed:5 in
  let xs = Array.init 5000 (fun _ -> Numeric.Rng.gaussian rng) in
  let h = Numeric.Histogram.of_samples ~bins:30 xs in
  let series = Numeric.Histogram.density_series h in
  let width =
    match (series.(0), series.(1)) with (x0, _), (x1, _) -> x1 -. x0
  in
  let total = Array.fold_left (fun acc (_, d) -> acc +. (d *. width)) 0.0 series in
  check_close "integral" 1.0 total ~eps:1e-9

let test_histogram_outliers_clamped () =
  let h = Numeric.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Numeric.Histogram.add h (-5.0);
  Numeric.Histogram.add h 50.0;
  Alcotest.(check int) "low outlier" 1 (Numeric.Histogram.bin_count h 0);
  Alcotest.(check int) "high outlier" 1 (Numeric.Histogram.bin_count h 9);
  Alcotest.(check int) "total" 2 (Numeric.Histogram.total h)

let test_histogram_percentile () =
  (* 1000 uniform samples over [0, 1000) in 100 bins: every estimate
     must land within one bin width of the exact quantile. *)
  let h = Numeric.Histogram.create ~lo:0.0 ~hi:1000.0 ~bins:100 in
  for i = 0 to 999 do
    Numeric.Histogram.add h (float_of_int i +. 0.5)
  done;
  List.iter
    (fun p ->
      let exact = p *. 1000.0 in
      let est = Numeric.Histogram.percentile h p in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within a bin (got %.1f)" (100.0 *. p) est)
        true
        (Float.abs (est -. exact) <= 10.0))
    [ 0.0; 0.01; 0.5; 0.95; 0.99; 1.0 ];
  (* A single-sample histogram: every quantile falls in its bin. *)
  let one = Numeric.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Numeric.Histogram.add one 4.2;
  let est = Numeric.Histogram.percentile one 0.5 in
  Alcotest.(check bool) "single sample stays in its bin" true
    (est >= 4.0 && est <= 5.0);
  Alcotest.check_raises "empty"
    (Invalid_argument "Histogram.percentile: empty histogram") (fun () ->
      ignore
        (Numeric.Histogram.percentile
           (Numeric.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2)
           0.5));
  Alcotest.check_raises "domain"
    (Invalid_argument "Histogram.percentile: p must be in [0, 1]") (fun () ->
      ignore (Numeric.Histogram.percentile one 1.5))

let test_histogram_validation () =
  Alcotest.check_raises "bins > 0"
    (Invalid_argument "Histogram.create: bins must be > 0") (fun () ->
      ignore (Numeric.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0));
  Alcotest.check_raises "hi > lo"
    (Invalid_argument "Histogram.create: hi must exceed lo") (fun () ->
      ignore (Numeric.Histogram.create ~lo:1.0 ~hi:1.0 ~bins:4))

let prop_cdf_symmetry =
  QCheck.Test.make ~name:"Phi(x) + Phi(-x) = 1" ~count:300
    QCheck.(float_range (-8.0) 8.0)
    (fun x ->
      Float.abs (Numeric.Normal.cdf x +. Numeric.Normal.cdf (-.x) -. 1.0) < 1e-12)

let test_pdf_integrates_to_one () =
  (* Trapezoidal integration over [-8, 8]. *)
  let n = 4000 in
  let h = 16.0 /. float_of_int n in
  let acc = ref 0.0 in
  for i = 0 to n do
    let x = -8.0 +. (h *. float_of_int i) in
    let w = if i = 0 || i = n then 0.5 else 1.0 in
    acc := !acc +. (w *. Numeric.Normal.pdf x)
  done;
  check_close "integral" 1.0 (!acc *. h) ~eps:1e-9

let test_solve_1x1 () =
  let x = Numeric.Linalg.solve [| [| 4.0 |] |] [| 8.0 |] in
  check_close "trivial system" 2.0 x.(0) ~eps:1e-12

let test_least_squares_underdetermined () =
  Alcotest.check_raises "m < n rejected"
    (Invalid_argument "Linalg.least_squares: underdetermined system") (fun () ->
      ignore (Numeric.Linalg.least_squares [| [| 1.0; 2.0 |] |] [| 1.0 |]))

let test_fit_line_two_points_exact () =
  let intercept, slope = Numeric.Linalg.fit_line [| (1.0, 5.0); (3.0, 9.0) |] in
  check_close "slope" 2.0 slope ~eps:1e-12;
  check_close "intercept" 3.0 intercept ~eps:1e-12

let test_rng_int_bounds () =
  let rng = Numeric.Rng.create ~seed:8 in
  for _ = 1 to 500 do
    let v = Numeric.Rng.int rng ~bound:7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bound must be positive"
    (Invalid_argument "Rng.int: bound must be > 0") (fun () ->
      ignore (Numeric.Rng.int rng ~bound:0));
  Alcotest.check_raises "range order"
    (Invalid_argument "Rng.uniform_range: hi < lo") (fun () ->
      ignore (Numeric.Rng.uniform_range rng ~lo:1.0 ~hi:0.0))

let test_covariance_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.covariance: empty or mismatched samples") (fun () ->
      ignore (Numeric.Stats.covariance [| 1.0 |] [| 1.0; 2.0 |]))

let test_percentile_domain () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p must lie in [0, 1]") (fun () ->
      ignore (Numeric.Stats.percentile [| 1.0 |] 1.5))

(* ---------- discrete pmf ---------- *)

let test_pmf_construction () =
  let p = Numeric.Pmf.of_points [ (2.0, 1.0); (1.0, 1.0); (2.0, 2.0) ] in
  Alcotest.(check int) "merged equal values" 2 (Numeric.Pmf.size p);
  check_close "mean" ((1.0 /. 4.0) +. (2.0 *. 3.0 /. 4.0)) (Numeric.Pmf.mean p)
    ~eps:1e-12;
  Alcotest.check_raises "negative weight" (Invalid_argument "Pmf: negative weight")
    (fun () -> ignore (Numeric.Pmf.of_points [ (1.0, -1.0) ]));
  let c = Numeric.Pmf.constant 5.0 in
  check_close "constant mean" 5.0 (Numeric.Pmf.mean c);
  check_close "constant std" 0.0 (Numeric.Pmf.std c)

let test_pmf_of_normal_moments () =
  let p = Numeric.Pmf.of_normal ~points:31 ~mu:10.0 ~sigma:2.0 () in
  check_close "mean" 10.0 (Numeric.Pmf.mean p) ~eps:1e-9;
  (* Strip-median discretisation slightly under-disperses. *)
  Alcotest.(check bool) "std close" true
    (Float.abs (Numeric.Pmf.std p -. 2.0) < 0.2);
  check_close "degenerate" 3.0 (Numeric.Pmf.mean (Numeric.Pmf.of_normal ~mu:3.0 ~sigma:0.0 ()))

let test_pmf_add_independent () =
  let a = Numeric.Pmf.of_points [ (0.0, 0.5); (2.0, 0.5) ] in
  let b = Numeric.Pmf.of_points [ (1.0, 0.5); (3.0, 0.5) ] in
  let s = Numeric.Pmf.add a b in
  check_close "sum mean" 3.0 (Numeric.Pmf.mean s) ~eps:1e-12;
  check_close "sum variance" (Numeric.Pmf.variance a +. Numeric.Pmf.variance b)
    (Numeric.Pmf.variance s) ~eps:1e-12;
  (* Support: 1,3,3,5 -> {1: .25, 3: .5, 5: .25}. *)
  Alcotest.(check int) "support" 3 (Numeric.Pmf.size s);
  check_close "P(X<=1)" 0.25 (Numeric.Pmf.cdf s 1.0) ~eps:1e-12;
  check_close "P(X<=3)" 0.75 (Numeric.Pmf.cdf s 3.0) ~eps:1e-12

let test_pmf_min_max () =
  let a = Numeric.Pmf.of_points [ (1.0, 0.5); (4.0, 0.5) ] in
  let b = Numeric.Pmf.of_points [ (2.0, 0.5); (3.0, 0.5) ] in
  let mn = Numeric.Pmf.min2 a b and mx = Numeric.Pmf.max2 a b in
  (* min support: 1 (p .5), 2 (.25), 3 (.25); max: 2 (.25), 3 (.25), 4 (.5). *)
  check_close "min mean" ((1.0 *. 0.5) +. (2.0 *. 0.25) +. (3.0 *. 0.25))
    (Numeric.Pmf.mean mn) ~eps:1e-12;
  check_close "max mean" ((2.0 *. 0.25) +. (3.0 *. 0.25) +. (4.0 *. 0.5))
    (Numeric.Pmf.mean mx) ~eps:1e-12;
  (* E[min] + E[max] = E[a] + E[b]. *)
  check_close "min+max identity"
    (Numeric.Pmf.mean a +. Numeric.Pmf.mean b)
    (Numeric.Pmf.mean mn +. Numeric.Pmf.mean mx)
    ~eps:1e-12

let test_pmf_compact_preserves_mean () =
  let a = Numeric.Pmf.of_normal ~points:31 ~mu:0.0 ~sigma:1.0 () in
  let b = Numeric.Pmf.of_normal ~points:31 ~mu:5.0 ~sigma:2.0 () in
  let s = Numeric.Pmf.add a b in
  Alcotest.(check bool) "support capped" true
    (Numeric.Pmf.size s <= Numeric.Pmf.max_support);
  check_close "mean preserved" 5.0 (Numeric.Pmf.mean s) ~eps:1e-9;
  Alcotest.(check bool) "variance approximately preserved" true
    (Float.abs (Numeric.Pmf.variance s -. (Numeric.Pmf.variance a +. Numeric.Pmf.variance b))
    < 0.3)

let test_pmf_percentile_and_dominance () =
  let p = Numeric.Pmf.of_points [ (1.0, 0.2); (2.0, 0.3); (3.0, 0.5) ] in
  check_close "p20" 1.0 (Numeric.Pmf.percentile p 0.2);
  check_close "p50" 2.0 (Numeric.Pmf.percentile p 0.5);
  check_close "p100" 3.0 (Numeric.Pmf.percentile p 1.0);
  let hi = Numeric.Pmf.shift 1.0 p in
  Alcotest.(check bool) "shifted dominates" true
    (Numeric.Pmf.stochastically_dominates hi p);
  Alcotest.(check bool) "original does not dominate" false
    (Numeric.Pmf.stochastically_dominates p hi);
  (* Crossing CDFs: neither dominates. *)
  let narrow = Numeric.Pmf.of_points [ (2.0, 1.0) ] in
  let wide = Numeric.Pmf.of_points [ (1.0, 0.5); (3.0, 0.5) ] in
  Alcotest.(check bool) "crossing cdfs" false
    (Numeric.Pmf.stochastically_dominates narrow wide
    || Numeric.Pmf.stochastically_dominates wide narrow)

let test_pmf_scale_negative () =
  let p = Numeric.Pmf.of_points [ (1.0, 0.5); (2.0, 0.5) ] in
  let q = Numeric.Pmf.scale (-2.0) p in
  check_close "mean" (-3.0) (Numeric.Pmf.mean q) ~eps:1e-12;
  let vs = Numeric.Pmf.support q in
  Alcotest.(check bool) "sorted ascending" true (fst vs.(0) < fst vs.(1))

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "erf known values" `Quick test_erf_known_values;
    Alcotest.test_case "erfc known values" `Quick test_erfc_known_values;
    qcheck prop_erf_odd;
    qcheck prop_erf_erfc_complement;
    Alcotest.test_case "normal cdf known values" `Quick test_cdf_known_values;
    Alcotest.test_case "normal pdf known values" `Quick test_pdf_known_values;
    Alcotest.test_case "normal quantile known values" `Quick test_quantile_known_values;
    Alcotest.test_case "normal quantile domain" `Quick test_quantile_domain;
    qcheck prop_quantile_cdf_roundtrip;
    qcheck prop_cdf_monotone;
    Alcotest.test_case "mu/sigma helpers" `Quick test_mu_sigma_helpers;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "summarize empty" `Quick test_summarize_empty;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "covariance / correlation" `Quick test_covariance_correlation;
    qcheck prop_welford_matches_direct;
    Alcotest.test_case "linalg solve" `Quick test_solve;
    Alcotest.test_case "linalg solve with pivoting" `Quick test_solve_pivoting;
    Alcotest.test_case "linalg singular" `Quick test_solve_singular;
    Alcotest.test_case "fit_line" `Quick test_fit_line;
    Alcotest.test_case "least squares overdetermined" `Quick
      test_least_squares_overdetermined;
    qcheck prop_solve_roundtrip;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng uniform range" `Quick test_rng_uniform_range;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "histogram integrates to 1" `Quick
      test_histogram_density_integrates_to_one;
    Alcotest.test_case "histogram clamps outliers" `Quick
      test_histogram_outliers_clamped;
    Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
    Alcotest.test_case "histogram percentile" `Quick test_histogram_percentile;
    Alcotest.test_case "pmf construction" `Quick test_pmf_construction;
    Alcotest.test_case "pmf of_normal moments" `Quick test_pmf_of_normal_moments;
    Alcotest.test_case "pmf add independent" `Quick test_pmf_add_independent;
    Alcotest.test_case "pmf min/max" `Quick test_pmf_min_max;
    Alcotest.test_case "pmf compaction" `Quick test_pmf_compact_preserves_mean;
    Alcotest.test_case "pmf percentile / dominance" `Quick
      test_pmf_percentile_and_dominance;
    Alcotest.test_case "pmf negative scale" `Quick test_pmf_scale_negative;
    qcheck prop_cdf_symmetry;
    Alcotest.test_case "pdf integrates to 1" `Quick test_pdf_integrates_to_one;
    Alcotest.test_case "solve 1x1" `Quick test_solve_1x1;
    Alcotest.test_case "least squares underdetermined" `Quick
      test_least_squares_underdetermined;
    Alcotest.test_case "fit_line exact through 2 points" `Quick
      test_fit_line_two_points_exact;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "covariance mismatch" `Quick test_covariance_mismatch;
    Alcotest.test_case "stats percentile domain" `Quick test_percentile_domain;
  ]
