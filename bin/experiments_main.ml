(* CLI runner for the paper's tables and figures: one id per experiment,
   "all" for the full evaluation section. *)

let run_ids ids mc_trials jobs =
  let pool = if jobs > 1 then Some (Exec.Pool.create ~jobs ()) else None in
  let setup = { Experiments.Common.default_setup with mc_trials; pool } in
  let ppf = Format.std_formatter in
  let run_one id =
    match Experiments.Registry.find id with
    | Some e ->
      e.Experiments.Registry.exec ppf setup;
      Format.fprintf ppf "@.";
      Ok ()
    | None ->
      Error
        (Printf.sprintf "unknown experiment %S (known: %s)" id
           (String.concat ", " Experiments.Registry.ids))
  in
  let ids =
    if List.mem "all" ids then Experiments.Registry.ids else ids
  in
  let rec go = function
    | [] -> Ok ()
    | id :: rest -> ( match run_one id with Ok () -> go rest | Error _ as e -> e)
  in
  let status = go ids in
  Option.iter Exec.Pool.shutdown pool;
  match status with
  | Ok () -> 0
  | Error msg ->
    prerr_endline msg;
    1

open Cmdliner

let ids_arg =
  let doc =
    "Experiment ids to run (or $(b,all)).  Known ids: "
    ^ String.concat ", " Experiments.Registry.ids
  in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let trials_arg =
  let doc = "Monte-Carlo trials for the MC-based figures." in
  Arg.(
    value
    & opt int Experiments.Common.default_setup.Experiments.Common.mc_trials
    & info [ "trials" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Domains to run experiment cells and Monte-Carlo chunks on \
     (1 = sequential).  Defaults to $(b,VARBUF_JOBS) or the \
     recommended domain count; results are identical at any value."
  in
  Arg.(value & opt int (Exec.Pool.default_jobs ()) & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  let info = Cmd.info "varbuf-experiments" ~doc in
  Cmd.v info Term.(const run_ids $ ids_arg $ trials_arg $ jobs_arg)

let () = exit (Cmd.eval' cmd)
