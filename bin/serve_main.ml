(* varbuf-serve: the buffer-insertion daemon and its control client.

   `start` runs the optimiser as a long-lived server on a Unix-domain
   socket (graceful drain on SIGINT/SIGTERM or a `shutdown` request);
   `request`, `stats` and `shutdown` are one-shot clients. *)

open Cmdliner

let default_socket = Filename.concat (Filename.get_temp_dir_name ()) "varbuf-serve.sock"

let socket_arg =
  Arg.(value & opt string default_socket & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path.")

(* Client-side transport selection: the Unix socket by default, TCP
   with --tcp.  A bare port means loopback. *)
let tcp_client_arg =
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT"
         ~doc:"Connect over TCP instead of the Unix socket; a bare PORT \
               means 127.0.0.1:PORT.")

let wire_arg =
  Arg.(value
       & opt (enum [ ("v1", Serve.Wire.V1); ("v2", Serve.Wire.V2) ])
           Serve.Wire.V1
       & info [ "wire" ] ~docv:"VER"
           ~doc:"Wire encoding: v1 (text) or v2 (binary).")

let resolve_addr socket tcp =
  match tcp with
  | None -> Serve.Client.Unix_sock socket
  | Some s -> (
    match int_of_string_opt s with
    | Some port -> Serve.Client.Tcp ("127.0.0.1", port)
    | None -> Serve.Client.addr_of_string s)

(* ---------- start ---------- *)

let start socket tcp_port jobs queue_depth max_request_bytes cache_entries
    tape_entries obs trace =
  if obs || trace <> None then Obs.Control.enable ();
  let stop = Atomic.make false in
  let handle = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle;
  let config =
    {
      (Serve.Server.default_config ~socket_path:socket) with
      Serve.Server.tcp_port;
      jobs;
      queue_depth;
      max_payload = max_request_bytes;
      cache_entries;
      tape_entries;
    }
  in
  Printf.printf
    "varbuf-serve: listening on %s%s (jobs=%d, queue=%d, cache=%d, tapes=%d)\n%!"
    socket
    (match tcp_port with
    | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
    | None -> "")
    jobs queue_depth cache_entries tape_entries;
  (try Serve.Server.run ~should_stop:(fun () -> Atomic.get stop) config
   with Unix.Unix_error (e, fn, arg) ->
     prerr_endline
       (Printf.sprintf "cannot serve on %s: %s (%s %s)" socket
          (Unix.error_message e) fn arg);
     exit 1);
  (match trace with
  | Some path ->
    Obs.Span.flush ();
    (try Obs.Export.write_chrome ~path (Obs.Span.snapshot ())
     with Sys_error msg ->
       prerr_endline ("cannot write trace: " ^ msg);
       exit 1);
    Printf.printf "varbuf-serve: trace written to %s\n%!" path
  | None -> ());
  Printf.printf "varbuf-serve: drained, exiting\n%!";
  0

let tcp_listen_arg =
  Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT"
         ~doc:"Also listen on 127.0.0.1:PORT (the Unix socket stays \
               bound either way).")

let start_cmd =
  let jobs_arg =
    Arg.(value & opt int (Exec.Pool.default_jobs ()) & info [ "jobs"; "j" ]
           ~docv:"N" ~doc:"Pool size (defaults to \\$VARBUF_JOBS or the \
                           recommended domain count).")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N"
           ~doc:"Maximum requests queued or running; beyond it requests \
                 are refused with a busy error.")
  in
  let max_bytes_arg =
    Arg.(value & opt int (8 * 1024 * 1024) & info [ "max-request-bytes" ]
           ~docv:"BYTES" ~doc:"Request frame size limit.")
  in
  let cache_arg =
    Arg.(value & opt int 128 & info [ "cache-entries" ] ~docv:"N"
           ~doc:"Result-cache capacity (LRU); repeated request payloads \
                 are answered from memory byte-identically.  0 disables \
                 caching.")
  in
  let tape_arg =
    Arg.(value & opt int 128 & info [ "tape-entries" ] ~docv:"N"
           ~doc:"Compiled-tape cache capacity (LRU, keyed by topology \
                 digest); warm topologies skip per-net tape compilation \
                 and, on the v2 wire, the tree decode.  0 disables the \
                 tape cache.")
  in
  let obs_arg =
    Arg.(value & flag & info [ "obs" ]
           ~doc:"Enable observability: stats replies gain obs_* lines \
                 (queue wait vs execution split, DP phase counters) and \
                 the trace request returns the recent span buffer.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Enable observability and, after draining, write the \
                 daemon's span buffer to FILE as Chrome trace_event JSON.")
  in
  Cmd.v
    (Cmd.info "start" ~doc:"run the buffering daemon (foreground)")
    Term.(
      const start $ socket_arg $ tcp_listen_arg $ jobs_arg $ queue_arg
      $ max_bytes_arg $ cache_arg $ tape_arg $ obs_arg $ trace_arg)

(* ---------- cluster ---------- *)

let cluster socket tcp_port shards jobs_per_shard queue_depth
    max_request_bytes cache_entries tape_entries conns_per_shard v1_cache =
  let stop = Atomic.make false in
  let handle = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle;
  let config =
    {
      Cluster.Supervisor.shards;
      socket_path = socket;
      tcp_port;
      jobs_per_shard;
      cache_entries;
      tape_entries;
      queue_depth;
      conns_per_shard;
      max_payload = max_request_bytes;
      v1_cache;
    }
  in
  Printf.printf
    "varbuf-serve: cluster on %s%s (%d shards, jobs/shard=%d, cache/shard=%d)\n%!"
    socket
    (match tcp_port with
    | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
    | None -> "")
    shards jobs_per_shard cache_entries;
  (try Cluster.Supervisor.run ~should_stop:(fun () -> Atomic.get stop) config
   with Unix.Unix_error (e, fn, arg) ->
     prerr_endline
       (Printf.sprintf "cannot serve on %s: %s (%s %s)" socket
          (Unix.error_message e) fn arg);
     exit 1);
  Printf.printf "varbuf-serve: cluster drained, exiting\n%!";
  0

let cluster_cmd =
  let shards_arg =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N"
           ~doc:"Worker processes; requests shard by a digest of the \
                 routing tree, so each worker's result cache sees a \
                 stable slice of the nets.")
  in
  let jobs_arg =
    Arg.(value & opt int (Exec.Pool.default_jobs ()) & info [ "jobs-per-shard" ]
           ~docv:"N" ~doc:"Pool size inside each worker.")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N"
           ~doc:"Pending-queue bound per shard; beyond it requests are \
                 refused with a busy error.")
  in
  let max_bytes_arg =
    Arg.(value & opt int (8 * 1024 * 1024) & info [ "max-request-bytes" ]
           ~docv:"BYTES" ~doc:"Request frame size limit.")
  in
  let cache_arg =
    Arg.(value & opt int 128 & info [ "cache-entries" ] ~docv:"N"
           ~doc:"Result-cache capacity per worker; 0 disables caching.")
  in
  let tape_arg =
    Arg.(value & opt int 128 & info [ "tape-entries" ] ~docv:"N"
           ~doc:"Compiled-tape cache capacity per worker (LRU, keyed by \
                 topology digest); 0 disables the tape cache.")
  in
  let conns_arg =
    Arg.(value & opt int 4 & info [ "conns-per-shard" ] ~docv:"N"
           ~doc:"Router links (= max concurrent requests) per worker.")
  in
  let v1_cache_arg =
    Arg.(value & opt int 128 & info [ "v1-cache" ] ~docv:"N"
           ~doc:"Router v1-to-v2 transcode cache capacity (LRU); repeated \
                 v1 request bodies skip the text decode, binary encode and \
                 shard digest.  0 disables the fast path.  Capacity and \
                 hit/miss totals appear as cluster_v1_cache_* stats lines.")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"run a sharded multi-process cluster (router + N workers)")
    Term.(
      const cluster $ socket_arg $ tcp_listen_arg $ shards_arg $ jobs_arg
      $ queue_arg $ max_bytes_arg $ cache_arg $ tape_arg $ conns_arg
      $ v1_cache_arg)

(* ---------- request ---------- *)

let load_tree bench file seed sinks =
  match (bench, file, sinks) with
  | Some name, None, None -> (
    match Rctree.Benchmarks.load_by_name name with
    | tree -> Ok tree
    | exception Not_found ->
      Error
        (Printf.sprintf "unknown benchmark %S (known: %s)" name
           (String.concat ", " Rctree.Benchmarks.names)))
  | None, Some path, None -> (
    try Ok (Rctree.Io.load path)
    with Sys_error msg | Failure msg -> Error ("cannot load tree: " ^ msg))
  | None, None, Some n ->
    let die_um = Float.max 4000.0 (sqrt (float_of_int n) *. 400.0) in
    Ok (Rctree.Generate.random_steiner ~seed ~sinks:n ~die_um ())
  | None, None, None -> Error "give one of --bench, --load or --sinks"
  | _ -> Error "give exactly one of --bench, --load or --sinks"

let rule_of_string p = function
  | "det" -> Ok Bufins.Prune.deterministic
  | "2p" -> Ok (Bufins.Prune.two_param ~p_l:p ~p_t:p ())
  | "1p" -> Ok (Bufins.Prune.one_param ~alpha:0.95)
  | "4p" -> Ok (Bufins.Prune.four_param ())
  | s -> Error (Printf.sprintf "unknown pruning rule %S (det|2p|1p|4p)" s)

let mode_of_string = function
  | "nom" -> Ok Experiments.Common.Nom
  | "d2d" -> Ok Experiments.Common.D2d
  | "wid" -> Ok Experiments.Common.Wid
  | s -> Error (Printf.sprintf "unknown algorithm %S (nom|d2d|wid)" s)

let probe_malformed client =
  (* A request frame whose payload is not a request: the server must
     answer with a parse error and keep the connection serving. *)
  let reply =
    Serve.Client.roundtrip client ~kind:"request" "this is not a request\n"
  in
  match reply.Serve.Wire.kind with
  | "error" ->
    let e = Serve.Protocol.decode_error reply.Serve.Wire.payload in
    Printf.printf "probe: error code=%s message=%s\n" e.Serve.Protocol.code
      e.Serve.Protocol.message;
    if e.Serve.Protocol.code <> Serve.Protocol.err_parse then begin
      prerr_endline "probe: expected a parse error";
      exit 1
    end
  | kind ->
    prerr_endline
      (Printf.sprintf "probe: expected an error frame, got %S" kind);
    exit 1

let request socket tcp wire bench file sinks algo_s rule_s p seed deadline_ms
    mc wire_sizing samples relax btypes save_buffering probe =
  let ( let* ) r f = match r with Ok v -> f v | Error msg ->
    prerr_endline msg; 1
  in
  let* tree = load_tree bench file seed sinks in
  let* mode = mode_of_string algo_s in
  let* rule = rule_of_string p rule_s in
  let* () =
    if samples < 0 then Error "--samples must be >= 0" else Ok ()
  in
  let* () = if btypes < 0 then Error "--btypes must be >= 0" else Ok () in
  let req =
    {
      (Serve.Protocol.default_request ~tree) with
      Serve.Protocol.seed;
      mode;
      rule;
      deadline_ms;
      mc_trials = mc;
      wire_sizing;
      samples;
      relax;
      btypes;
    }
  in
  let addr = resolve_addr socket tcp in
  match Serve.Client.connect_addr ~wire addr with
  | exception Unix.Unix_error (e, _, _) ->
    prerr_endline
      (Printf.sprintf "cannot connect to %s: %s" (Serve.Client.pp_addr addr)
         (Unix.error_message e));
    1
  | exception Failure msg ->
    prerr_endline ("handshake failed: " ^ msg);
    1
  | client ->
    Fun.protect ~finally:(fun () -> Serve.Client.close client) @@ fun () ->
    if probe then probe_malformed client;
    (match Serve.Client.request client req with
    | Ok r ->
      Printf.printf
        "%s/%s: buffers=%d sized-wires=%d nodes=%d peak-candidates=%d\n"
        algo_s rule_s
        (List.length r.Serve.Protocol.assignment.Bufins.Assignment.buffers)
        (List.length r.Serve.Protocol.assignment.Bufins.Assignment.widths)
        r.Serve.Protocol.nodes r.Serve.Protocol.peak_candidates;
      (match r.Serve.Protocol.sampled with
      | Some s ->
        Printf.printf
          "sampled driver RAT (K=%d): mu=%.1f ps, sigma=%.1f ps, \
           95%%-yield RAT=%.1f ps\n"
          s.Serve.Protocol.s_k s.Serve.Protocol.s_mean
          s.Serve.Protocol.s_std s.Serve.Protocol.s_rat_at_yield
      | None -> ());
      Printf.printf
        "root RAT under full model: mu=%.1f ps, sigma=%.1f ps, 95%%-yield RAT=%.1f ps\n"
        r.Serve.Protocol.root_mean r.Serve.Protocol.root_std
        r.Serve.Protocol.root_yield95;
      (match r.Serve.Protocol.mc with
      | Some (mean, std) ->
        Printf.printf "Monte Carlo (%d trials): mu=%.1f ps, sigma=%.1f ps\n" mc
          mean std
      | None -> ());
      (match save_buffering with
      | Some path -> (
        try
          Bufins.Assignment.save path r.Serve.Protocol.assignment;
          Printf.printf "buffering written to %s\n" path
        with Sys_error msg ->
          prerr_endline ("cannot save buffering: " ^ msg);
          exit 1)
      | None -> ());
      0
    | Error e ->
      prerr_endline
        (Printf.sprintf "server error: code=%s message=%s" e.Serve.Protocol.code
           e.Serve.Protocol.message);
      if e.Serve.Protocol.code = Serve.Protocol.err_deadline then 2 else 1)

let request_cmd =
  let bench_arg =
    Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"NAME"
           ~doc:"Benchmark name (p1, p2, r1..r5).")
  in
  let file_arg =
    Arg.(value & opt (some string) None & info [ "load" ] ~docv:"FILE"
           ~doc:"Load the routing tree from a varbuf tree file.")
  in
  let sinks_arg =
    Arg.(value & opt (some int) None & info [ "sinks" ] ~docv:"N"
           ~doc:"Generate a random Steiner tree with N sinks.")
  in
  let algo_arg =
    Arg.(value & opt string "wid" & info [ "algo" ] ~docv:"ALGO"
           ~doc:"Algorithm: nom, d2d or wid.")
  in
  let rule_arg =
    Arg.(value & opt string "2p" & info [ "rule" ] ~docv:"RULE"
           ~doc:"Pruning rule: det, 2p, 1p or 4p.")
  in
  let p_arg =
    Arg.(value & opt float 0.5 & info [ "p" ] ~docv:"P"
           ~doc:"The 2P parameters p_L = p_T (0.5 to 1).")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Request seed (generator and Monte Carlo).")
  in
  let deadline_arg =
    Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-request wall-clock deadline; 0 = none.")
  in
  let mc_arg =
    Arg.(value & opt int 0 & info [ "mc" ] ~docv:"N"
           ~doc:"Also run N Monte-Carlo trials on the result.")
  in
  let wire_sizing_arg =
    Arg.(value & flag & info [ "wire-sizing" ]
           ~doc:"Size wires simultaneously with buffer insertion.")
  in
  let samples_arg =
    Arg.(value & opt int 0 & info [ "samples" ] ~docv:"K"
           ~doc:"Route the request to the sampling-based yield engine \
                 with K process corners (0, the default, uses the \
                 canonical engine with --rule).")
  in
  let relax_arg =
    Arg.(value & opt float 1.0 & info [ "relax" ] ~docv:"R"
           ~doc:"Sample-dominance relaxation for --samples (1 = exact \
                 full dominance).")
  in
  let btypes_arg =
    Arg.(value & opt int 0 & info [ "btypes" ] ~docv:"B"
           ~doc:"Optimise with the deterministic synthetic buffer \
                 library of B device types (alternating repeaters and \
                 inverters).  0, the default, keeps the server's \
                 default 3-type library and the historical request \
                 bytes.")
  in
  let save_buffering_arg =
    Arg.(value & opt (some string) None & info [ "save-buffering" ]
           ~docv:"FILE" ~doc:"Write the returned buffering to FILE.")
  in
  let probe_arg =
    Arg.(value & flag & info [ "probe-malformed" ]
           ~doc:"First send a malformed request on the same connection and \
                 check the server answers it with a parse error (used by the \
                 CI smoke test).")
  in
  Cmd.v
    (Cmd.info "request" ~doc:"submit one buffering request to the daemon")
    Term.(
      const request $ socket_arg $ tcp_client_arg $ wire_arg $ bench_arg
      $ file_arg $ sinks_arg $ algo_arg $ rule_arg $ p_arg $ seed_arg
      $ deadline_arg $ mc_arg $ wire_sizing_arg $ samples_arg $ relax_arg
      $ btypes_arg $ save_buffering_arg $ probe_arg)

(* ---------- stats / shutdown ---------- *)

let with_client socket tcp wire f =
  let addr = resolve_addr socket tcp in
  match Serve.Client.connect_addr ~wire addr with
  | exception Unix.Unix_error (e, _, _) ->
    prerr_endline
      (Printf.sprintf "cannot connect to %s: %s" (Serve.Client.pp_addr addr)
         (Unix.error_message e));
    1
  | exception Failure msg ->
    prerr_endline ("handshake failed: " ^ msg);
    1
  | client ->
    Fun.protect ~finally:(fun () -> Serve.Client.close client) (fun () ->
        f client)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"print the daemon's counters and latency histogram")
    Term.(
      const (fun socket tcp wire ->
          with_client socket tcp wire (fun client ->
              print_string (Serve.Client.stats client);
              0))
      $ socket_arg $ tcp_client_arg $ wire_arg)

let trace_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Write the trace JSON to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"fetch the daemon's recent span buffer as Chrome trace JSON")
    Term.(
      const (fun socket tcp wire out ->
          with_client socket tcp wire (fun client ->
              let payload = Serve.Client.trace client in
              match out with
              | None ->
                print_string payload;
                0
              | Some path -> (
                try
                  let oc = open_out path in
                  Fun.protect
                    ~finally:(fun () -> close_out oc)
                    (fun () -> output_string oc payload);
                  Printf.printf "trace written to %s\n" path;
                  0
                with Sys_error msg ->
                  prerr_endline ("cannot write trace: " ^ msg);
                  1)))
      $ socket_arg $ tcp_client_arg $ wire_arg $ out_arg)

let shutdown_cmd =
  Cmd.v
    (Cmd.info "shutdown" ~doc:"ask the daemon to drain and exit")
    Term.(
      const (fun socket tcp wire ->
          with_client socket tcp wire (fun client ->
              Serve.Client.shutdown client;
              print_endline "server draining";
              0))
      $ socket_arg $ tcp_client_arg $ wire_arg)

let () =
  let doc = "variation-aware buffer insertion as a service" in
  let info = Cmd.info "varbuf-serve" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ start_cmd; cluster_cmd; request_cmd; stats_cmd; trace_cmd;
            shutdown_cmd ]))
