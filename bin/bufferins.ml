(* Command-line buffer-insertion tool: generate or pick a benchmark,
   run one of the algorithms with any pruning rule, and report the
   solution together with its evaluation under the full variation
   model. *)

open Cmdliner

type source =
  | Bench of string
  | Random of int      (* sinks *)
  | Htree of int       (* levels *)
  | File of string     (* varbuf tree file *)

let die_of_tree tree =
  (* Bounding square of the net, grid-aligned, for trees loaded from
     files (generated sources know their die directly). *)
  let hi = ref 4000.0 in
  for id = 0 to Rctree.Tree.node_count tree - 1 do
    let x, y = Rctree.Tree.position tree id in
    hi := Float.max !hi (Float.max x y)
  done;
  ceil (!hi /. 500.0) *. 500.0

let load_tree source seed =
  match source with
  | Bench name ->
    let info = Rctree.Benchmarks.find name in
    (Rctree.Benchmarks.load info, info.Rctree.Benchmarks.die_um)
  | Random sinks ->
    let die_um = Float.max 4000.0 (sqrt (float_of_int sinks) *. 400.0) in
    (Rctree.Generate.random_steiner ~seed ~sinks ~die_um (), die_um)
  | Htree levels ->
    let die_um = 20000.0 in
    (Rctree.Generate.h_tree ~seed ~levels ~die_um (), die_um)
  | File path ->
    let tree = Rctree.Io.load path in
    (tree, die_of_tree tree)

let algo_of_string = function
  | "nom" -> Ok Experiments.Common.Nom
  | "d2d" -> Ok Experiments.Common.D2d
  | "wid" -> Ok Experiments.Common.Wid
  | s -> Error (Printf.sprintf "unknown algorithm %S (nom|d2d|wid)" s)

let rule_of_string p = function
  | "det" -> Ok Bufins.Prune.deterministic
  | "2p" -> Ok (Bufins.Prune.two_param ~p_l:p ~p_t:p ())
  | "1p" -> Ok (Bufins.Prune.one_param ~alpha:0.95)
  | "4p" -> Ok (Bufins.Prune.four_param ())
  | s ->
    Error (Printf.sprintf "unknown pruning rule %S (det|2p|1p|4p|sample)" s)

(* Flush, then write/print the observability outputs the flags asked
   for.  Runs on both the normal and the DNF exit path, so an aborted
   run still leaves a partial trace to look at. *)
let dump_obs ~obs ~trace =
  if obs || trace <> None then begin
    Obs.Span.flush ();
    let spans = Obs.Span.snapshot () in
    Option.iter
      (fun path ->
        (try Obs.Export.write_chrome ~path spans
         with Sys_error msg ->
           prerr_endline ("cannot write trace: " ^ msg);
           exit 1);
        Format.printf "trace written to %s@." path)
      trace;
    if obs then
      print_string (Obs.Export.summary ~counters:Obs.Counters.global spans)
  end

let run bench sinks htree file algo_s rule_s p seed mc homogeneous save_tree
    wire_sizing save_buffering load_limit lib_file btypes jobs par_grain samples
    relax objective_s eps_power use_tape obs trace =
  if obs || trace <> None then Obs.Control.enable ();
  let source =
    match (bench, sinks, htree, file) with
    | Some b, None, None, None -> Ok (Bench b)
    | None, Some n, None, None -> Ok (Random n)
    | None, None, Some l, None -> Ok (Htree l)
    | None, None, None, Some f -> Ok (File f)
    | None, None, None, None -> Ok (Bench "p1")
    | _ -> Error "give at most one of --bench, --sinks, --htree, --load"
  in
  match source with
  | Error msg ->
    prerr_endline msg;
    1
  | Ok source -> (
    (* "sample" is not a canonical pruning rule: it routes the run to
       the sampling-based yield engine.  The placeholder rule below is
       never used on that path. *)
    let rule_res =
      if rule_s = "sample" then
        if samples < 1 then Error "--samples must be >= 1 with --rule sample"
        else Ok Bufins.Prune.deterministic
      else rule_of_string p rule_s
    in
    (* --lib / --btypes select the buffer library for the run; every
       engine threads it through candidate generation, the device-id
       pre-pass and the polarity-aware frontiers. *)
    let library_res =
      match (lib_file, btypes) with
      | Some _, Some _ -> Error "give at most one of --lib and --btypes"
      | Some path, None -> (
        try Ok (Device.Buffer.load path)
        with Sys_error msg | Failure msg ->
          Error ("cannot load buffer library: " ^ msg))
      | None, Some b ->
        if b < 1 then Error "--btypes must be >= 1"
        else Ok (Device.Buffer.synth_library ~btypes:b)
      | None, None -> Ok Experiments.Common.default_setup.library
    in
    let objective_res =
      if eps_power < 0.0 then Error "--eps-power must be >= 0"
      else
        try Ok (Bufins.Dominance.of_string objective_s)
        with Failure msg -> Error msg
    in
    match (algo_of_string algo_s, rule_res, library_res, objective_res) with
    | Error msg, _, _, _
    | _, Error msg, _, _
    | _, _, Error msg, _
    | _, _, _, Error msg ->
      prerr_endline msg;
      1
    | Ok algo, Ok rule, Ok library, Ok objective -> (
      let pool = if jobs > 1 then Some (Exec.Pool.create ~jobs ()) else None in
      let finally () = Option.iter Exec.Pool.shutdown pool in
      Fun.protect ~finally @@ fun () ->
      let setup =
        {
          Experiments.Common.default_setup with
          mc_trials = mc;
          pool;
          par_grain;
          library;
        }
      in
      if lib_file <> None || btypes <> None then
        Format.printf "library: %d types (%d inverting)@." (Array.length library)
          (Array.length library
          - Array.length (fst (Device.Buffer.partition_indices library)));
      let tree, die_um =
        try load_tree source seed with
        | Not_found ->
          prerr_endline
            (Printf.sprintf "unknown benchmark (known: %s)"
               (String.concat ", " Rctree.Benchmarks.names));
          exit 1
        | Sys_error msg | Failure msg ->
          prerr_endline ("cannot load tree: " ^ msg);
          exit 1
      in
      let grid = Experiments.Common.grid_for setup ~die_um in
      let spatial =
        if homogeneous then Varmodel.Model.Homogeneous
        else Varmodel.Model.default_heterogeneous
      in
      Format.printf "tree: %a@." Rctree.Tree.pp_stats tree;
      Option.iter
        (fun path ->
          (try Rctree.Io.save path tree
           with Sys_error msg ->
             prerr_endline ("cannot save tree: " ^ msg);
             exit 1);
          Format.printf "tree written to %s@." path)
        save_tree;
      try
        (* --tape lowers the tree to a flat instruction tape first and
           runs the DP through the interpreter; results are
           byte-identical to the tree walk. *)
        let tape = if use_tape then Some (Compile.Tape.compile tree) else None in
        let buffers, widths, stats, load_limit_met, label, sampled, power =
          if rule_s = "sample" then begin
            let r =
              Experiments.Common.run_sampled setup ~wire_sizing ?load_limit
                ~samples ~relax ~seed ~objective ~eps_power ?tape ~spatial
                ~grid algo tree
            in
            ( r.Sample.Engine.buffers,
              r.Sample.Engine.widths,
              r.Sample.Engine.stats,
              r.Sample.Engine.load_limit_met,
              Printf.sprintf "sample(K=%d)" samples,
              Some
                ( r.Sample.Engine.sampled_mean,
                  r.Sample.Engine.sampled_std,
                  r.Sample.Engine.rat_at_yield ),
              r.Sample.Engine.best.Sample.Engine.power )
          end
          else begin
            let r =
              Experiments.Common.run_algo setup ~rule ~wire_sizing ?load_limit
                ~objective ~eps_power ?tape ~spatial ~grid algo tree
            in
            ( r.Bufins.Engine.buffers,
              r.Bufins.Engine.widths,
              r.Bufins.Engine.stats,
              r.Bufins.Engine.load_limit_met,
              Bufins.Prune.name rule,
              None,
              r.Bufins.Engine.best.Bufins.Sol.power )
          end
        in
        let form =
          Experiments.Common.evaluate setup ~spatial ~grid tree ~widths buffers
        in
        Format.printf
          "%s/%s: buffers=%d sized-wires=%d runtime=%.2fs peak-candidates=%d@."
          (Experiments.Common.algo_name algo)
          label (List.length buffers) (List.length widths)
          stats.Bufins.Engine.runtime_s stats.Bufins.Engine.peak_candidates;
        if not load_limit_met then
          Format.printf "warning: the load limit could not be met anywhere@.";
        Option.iter
          (fun (mu, sigma, raty) ->
            Format.printf
              "sampled driver RAT (K=%d): mu=%.1f ps, sigma=%.1f ps, \
               95%%-yield RAT=%.1f ps@."
              samples mu sigma raty)
          sampled;
        Format.printf
          "root RAT under full model: mu=%.1f ps, sigma=%.1f ps, 95%%-yield RAT=%.1f ps@."
          (Linform.mean form) (Linform.std form)
          (Sta.Yield.rat_at_yield form ~yield:0.95);
        if Bufins.Dominance.power_aware objective then
          Format.printf "objective %s: buffer energy=%.3f fJ@."
            (Bufins.Dominance.to_string objective) power;
        Option.iter
          (fun path ->
            (try
               Bufins.Assignment.save path { Bufins.Assignment.buffers; widths }
             with Sys_error msg ->
               prerr_endline ("cannot save buffering: " ^ msg);
               exit 1);
            Format.printf "buffering written to %s@." path)
          save_buffering;
        if mc > 0 then begin
          let inst =
            Experiments.Common.instance_for setup ~spatial ~grid tree ~widths
              buffers
          in
          let rng = Numeric.Rng.create ~seed in
          let samples = Sta.Buffered.monte_carlo ?pool inst ~rng ~trials:mc in
          let s = Numeric.Stats.summarize samples in
          Format.printf "Monte Carlo (%d trials): mu=%.1f ps, sigma=%.1f ps@." mc
            s.Numeric.Stats.mean s.Numeric.Stats.std
        end;
        dump_obs ~obs ~trace;
        0
      with Bufins.Engine.Budget_exceeded msg ->
        Format.printf "DNF: %s@." msg;
        dump_obs ~obs ~trace;
        2))

let bench_arg =
  Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"NAME"
         ~doc:"Benchmark name (p1, p2, r1..r5).")

let sinks_arg =
  Arg.(value & opt (some int) None & info [ "sinks" ] ~docv:"N"
         ~doc:"Generate a random Steiner tree with N sinks.")

let htree_arg =
  Arg.(value & opt (some int) None & info [ "htree" ] ~docv:"LEVELS"
         ~doc:"Generate an H-tree clock net with 4^LEVELS sinks.")

let algo_arg =
  Arg.(value & opt string "wid" & info [ "algo" ] ~docv:"ALGO"
         ~doc:"Algorithm: nom, d2d or wid.")

let rule_arg =
  Arg.(value & opt string "2p" & info [ "rule" ] ~docv:"RULE"
         ~doc:"Pruning rule: det, 2p, 1p or 4p — or sample, which runs \
               the Monte-Carlo sample-matrix DP (see --samples).")

let p_arg =
  Arg.(value & opt float 0.5 & info [ "p" ] ~docv:"P"
         ~doc:"The 2P parameters p_L = p_T (0.5 to 1).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let mc_arg =
  Arg.(value & opt int 0 & info [ "mc" ] ~docv:"N"
         ~doc:"Also run N Monte-Carlo trials on the result.")

let homogeneous_arg =
  Arg.(value & flag & info [ "homogeneous" ]
         ~doc:"Use the homogeneous spatial model (default: heterogeneous).")

let file_arg =
  Arg.(value & opt (some string) None & info [ "load" ] ~docv:"FILE"
         ~doc:"Load the routing tree from a varbuf tree file.")

let save_arg =
  Arg.(value & opt (some string) None & info [ "save-tree" ] ~docv:"FILE"
         ~doc:"Write the routing tree (before buffering) to FILE.")

let wire_sizing_arg =
  Arg.(value & flag & info [ "wire-sizing" ]
         ~doc:"Size wires simultaneously with buffer insertion (3-width library).")

let save_buffering_arg =
  Arg.(value & opt (some string) None & info [ "save-buffering" ] ~docv:"FILE"
         ~doc:"Write the chosen buffering (and wire sizing) to FILE for varbuf-sta.")

let load_limit_arg =
  Arg.(value & opt (some float) None & info [ "load-limit" ] ~docv:"FF"
         ~doc:"Maximum capacitance (fF) any buffer or the driver may drive.")

let lib_arg =
  Arg.(value & opt (some string) None & info [ "lib" ] ~docv:"FILE"
         ~doc:"Load the buffer library from FILE: one device per \
               non-comment line, NAME CAP_FF DELAY_PS RES_KOHM \
               [inv|buf].  Inverters are legal — the DP keeps \
               dual-polarity frontiers and only even inverter chains \
               reach the sinks.")

let btypes_arg =
  Arg.(value & opt (some int) None & info [ "btypes" ] ~docv:"B"
         ~doc:"Use the deterministic synthetic library with B device \
               types (a geometric size ladder alternating repeaters \
               and inverters).  B=1 keeps the default 3-type library.  \
               Mutually exclusive with --lib.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker domains: the DP's subtree tasks and Monte-Carlo \
               chunks run across them.  Results are identical at any \
               job count.")

let par_grain_arg =
  Arg.(value & opt (some int) None & info [ "par-grain" ] ~docv:"NODES"
         ~doc:"Subtree-size cutoff for DP parallelism: subtrees at or \
               below it run inline inside their parent task (default: \
               the engine's built-in grain).")

let samples_arg =
  Arg.(value & opt int 256 & info [ "samples" ] ~docv:"K"
         ~doc:"Process corners per candidate with --rule sample: every \
               candidate is a K-vector over one shared sample matrix \
               drawn from --seed, and dominance is counted per sample. \
               Ignored by the canonical rules.")

let relax_arg =
  Arg.(value & opt float 1.0 & info [ "relax" ] ~docv:"R"
         ~doc:"Yield-target relaxation for sample dominance: a \
               candidate is pruned only when dominated in at least \
               ceil(R*K) samples.  1 (default) is exact full dominance; \
               above 1 disables pruning (brute force).")

let objective_arg =
  Arg.(value & opt string "max_yield" & info [ "objective" ] ~docv:"OBJ"
         ~doc:"Optimisation objective: max_yield (the default — \
               historical behaviour, byte-identical output), \
               min_power=RAT (least buffer energy among root candidates \
               whose 95%-yield driver RAT meets RAT ps), or weighted=W \
               (maximise yield-RAT minus W times the buffer energy in \
               fJ).  Any power-aware objective prunes on the (load, \
               RAT, power) Pareto frontier.")

let eps_power_arg =
  Arg.(value & opt float 0.0 & info [ "eps-power" ] ~docv:"EPS"
         ~doc:"Epsilon-dominance bucket width (fJ) on the power axis of \
               the Pareto frontier; 0 (default) keeps the exact \
               frontier.  Only read under a power-aware --objective.")

let tape_arg =
  Arg.(value & vflag false
         [
           ( true,
             info [ "tape" ]
               ~doc:"Precompile the tree to a flat instruction tape and run \
                     the DP through the tape interpreter.  Byte-identical \
                     results; the lowering cost is paid once, which wins \
                     when the same topology is optimised repeatedly." );
           ( false,
             info [ "no-tape" ]
               ~doc:"Walk the tree directly (the default)." );
         ])

let obs_arg =
  Arg.(value & flag & info [ "obs" ]
         ~doc:"Enable observability (spans + counters) and print a text \
               summary — per-phase span totals, per-rule candidate \
               generated/kept/pruned counters, arena hit rates — after \
               the run.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Enable observability and write the run's spans to FILE as \
               Chrome trace_event JSON (load in chrome://tracing or \
               Perfetto).")

let cmd =
  let doc = "variation-aware buffer insertion on a routing tree" in
  let info = Cmd.info "varbuf-bufferins" ~doc in
  Cmd.v info
    Term.(
      const run $ bench_arg $ sinks_arg $ htree_arg $ file_arg $ algo_arg
      $ rule_arg $ p_arg $ seed_arg $ mc_arg $ homogeneous_arg $ save_arg
      $ wire_sizing_arg $ save_buffering_arg $ load_limit_arg $ lib_arg
      $ btypes_arg $ jobs_arg $ par_grain_arg $ samples_arg $ relax_arg
      $ objective_arg $ eps_power_arg $ tape_arg $ obs_arg $ trace_arg)

let () = exit (Cmd.eval' cmd)
