(* varbuf-loadgen: a load generator for varbuf-serve daemons and
   clusters.

   Opens N client connections (one domain each) against a Unix socket
   or TCP address, in v1 text or v2 binary encoding, and drives a
   fixed number of requests — closed-loop by default, or paced to a
   target request rate with --rps.  The workload is K distinct random
   Steiner trees cycled round-robin, so K below the worker cache size
   exercises the cache-hit path and K above it the optimiser.

   Reports achieved throughput, latency quantiles (p50/p95/p99,
   estimated from the sample-spanning latency histogram via
   Numeric.Histogram.percentile — the same helper the server's stats
   report uses), the latency histogram, and SLO attainment when
   --slo-ms is given. *)

open Cmdliner

type outcome = {
  mutable ok : int;
  mutable failed : (string * int) list;
  mutable lats_ms : float list;
}

let bump outcome code =
  outcome.failed <-
    (match List.assoc_opt code outcome.failed with
    | Some n -> (code, n + 1) :: List.remove_assoc code outcome.failed
    | None -> (code, 1) :: outcome.failed)

let rule_of_string p = function
  | "det" -> Ok Bufins.Prune.deterministic
  | "2p" -> Ok (Bufins.Prune.two_param ~p_l:p ~p_t:p ())
  | "1p" -> Ok (Bufins.Prune.one_param ~alpha:0.95)
  | "4p" -> Ok (Bufins.Prune.four_param ())
  | s -> Error (Printf.sprintf "unknown pruning rule %S (det|2p|1p|4p)" s)

let mode_of_string = function
  | "nom" -> Ok Experiments.Common.Nom
  | "d2d" -> Ok Experiments.Common.D2d
  | "wid" -> Ok Experiments.Common.Wid
  | s -> Error (Printf.sprintf "unknown algorithm %S (nom|d2d|wid)" s)

let resolve_addr socket tcp =
  match tcp with
  | None -> Serve.Client.Unix_sock socket
  | Some s -> (
    match int_of_string_opt s with
    | Some port -> Serve.Client.Tcp ("127.0.0.1", port)
    | None -> Serve.Client.addr_of_string s)

let run socket tcp wire connections requests rps sinks distinct seed algo_s
    rule_s p deadline_ms slo_ms json_out =
  let ( let* ) r f = match r with Ok v -> f v | Error msg ->
    prerr_endline msg; 1
  in
  let* mode = mode_of_string algo_s in
  let* rule = rule_of_string p rule_s in
  let* () =
    if connections < 1 || requests < 1 || distinct < 1 then
      Error "connections, requests and distinct must all be >= 1"
    else Ok ()
  in
  let addr = resolve_addr socket tcp in
  let die_um sinks = Float.max 4000.0 (sqrt (float_of_int sinks) *. 400.0) in
  (* K distinct nets, generated once and shared read-only by every
     connection domain. *)
  let trees =
    Array.init distinct (fun i ->
        Rctree.Generate.random_steiner ~seed:(seed + i) ~sinks
          ~die_um:(die_um sinks) ())
  in
  let reqs =
    Array.map
      (fun tree ->
        {
          (Serve.Protocol.default_request ~tree) with
          Serve.Protocol.seed;
          mode;
          rule;
          deadline_ms;
        })
      trees
  in
  let next = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let worker () =
    let outcome = { ok = 0; failed = []; lats_ms = [] } in
    match Serve.Client.connect_addr ~wire addr with
    | exception Unix.Unix_error (e, _, _) ->
      bump outcome ("connect: " ^ Unix.error_message e);
      outcome
    | exception Failure msg ->
      bump outcome ("handshake: " ^ msg);
      outcome
    | client ->
      Fun.protect ~finally:(fun () -> Serve.Client.close client) @@ fun () ->
      let rec go () =
        let k = Atomic.fetch_and_add next 1 in
        if k < requests then begin
          (* Paced mode: request k is due at t0 + k/rps, globally. *)
          if rps > 0.0 then begin
            let due = t0 +. (float_of_int k /. rps) in
            let wait = due -. Unix.gettimeofday () in
            if wait > 0.0 then Unix.sleepf wait
          end;
          let req =
            { reqs.(k mod distinct) with Serve.Protocol.id = k }
          in
          let sent = Unix.gettimeofday () in
          (match Serve.Client.request client req with
          | Ok _ ->
            outcome.ok <- outcome.ok + 1;
            outcome.lats_ms <-
              ((Unix.gettimeofday () -. sent) *. 1000.0) :: outcome.lats_ms
          | Error e -> bump outcome e.Serve.Protocol.code
          | exception (Failure msg | Sys_error msg) -> bump outcome msg
          | exception Serve.Wire.Closed -> bump outcome "connection closed");
          go ()
        end
      in
      go ();
      outcome
  in
  let domains = List.init connections (fun _ -> Domain.spawn worker) in
  let outcomes = List.map Domain.join domains in
  let elapsed = Unix.gettimeofday () -. t0 in
  let ok = List.fold_left (fun a o -> a + o.ok) 0 outcomes in
  let failed =
    List.fold_left
      (fun acc o ->
        List.fold_left
          (fun acc (code, n) ->
            match List.assoc_opt code acc with
            | Some m -> (code, m + n) :: List.remove_assoc code acc
            | None -> (code, n) :: acc)
          acc o.failed)
      [] outcomes
  in
  let lats =
    Array.of_list (List.concat_map (fun o -> o.lats_ms) outcomes)
  in
  Array.sort compare lats;
  let n_lat = Array.length lats in
  let mean =
    if n_lat = 0 then nan
    else Array.fold_left ( +. ) 0.0 lats /. float_of_int n_lat
  in
  let hist = if n_lat > 0 then Some (Numeric.Histogram.of_samples lats) else None in
  let percentile q =
    match hist with
    | None -> nan
    | Some h -> Numeric.Histogram.percentile h q
  in
  let p50 = percentile 0.50
  and p95 = percentile 0.95
  and p99 = percentile 0.99 in
  let throughput = float_of_int ok /. elapsed in
  let slo_attainment =
    if slo_ms > 0.0 && n_lat > 0 then
      let within =
        Array.fold_left (fun a l -> if l <= slo_ms then a + 1 else a) 0 lats
      in
      Some (float_of_int within /. float_of_int n_lat)
    else None
  in
  Printf.printf "target: %s (%s, %d connections%s)\n" (Serve.Client.pp_addr addr)
    (match wire with Serve.Wire.V1 -> "v1 text" | Serve.Wire.V2 -> "v2 binary")
    connections
    (if rps > 0.0 then Printf.sprintf ", %.0f rps target" rps else "");
  Printf.printf "workload: %d requests, %d distinct %d-sink trees\n" requests
    distinct sinks;
  Printf.printf "ok %d  errors %d  elapsed %.2f s  throughput %.1f req/s\n" ok
    (requests - ok) elapsed throughput;
  (match hist with
  | None -> ()
  | Some h ->
    Printf.printf
      "latency ms: mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n" mean
      p50 p95 p99 lats.(n_lat - 1);
    Array.iter
      (fun (x, d) -> if d > 0.0 then Printf.printf "  bucket %8.2f %.4f\n" x d)
      (Numeric.Histogram.density_series h));
  (match slo_attainment with
  | Some a -> Printf.printf "slo: %.1f ms attained %.2f%%\n" slo_ms (100.0 *. a)
  | None -> ());
  List.iter
    (fun (code, n) -> Printf.printf "error %s %d\n" code n)
    (List.sort compare failed);
  (match json_out with
  | None -> ()
  | Some path ->
    let buf = Buffer.create 256 in
    Printf.bprintf buf
      "{\"requests\": %d, \"ok\": %d, \"errors\": %d, \"elapsed_s\": %.3f, \
       \"throughput_rps\": %.2f, \"latency_ms\": {\"mean\": %.3f, \"p50\": \
       %.3f, \"p95\": %.3f, \"p99\": %.3f}%s}\n"
      requests ok (requests - ok) elapsed throughput mean p50 p95 p99
      (match slo_attainment with
      | Some a ->
        Printf.sprintf ", \"slo_ms\": %.1f, \"slo_attainment\": %.4f" slo_ms a
      | None -> "");
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Buffer.contents buf)));
  if ok = 0 then 1 else 0

let cmd =
  let socket_arg =
    Arg.(value
         & opt string
             (Filename.concat (Filename.get_temp_dir_name ())
                "varbuf-serve.sock")
         & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")
  in
  let tcp_arg =
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"Connect over TCP; a bare PORT means 127.0.0.1:PORT.")
  in
  let wire_arg =
    Arg.(value
         & opt (enum [ ("v1", Serve.Wire.V1); ("v2", Serve.Wire.V2) ])
             Serve.Wire.V2
         & info [ "wire" ] ~docv:"VER"
             ~doc:"Wire encoding: v1 (text) or v2 (binary).")
  in
  let conns_arg =
    Arg.(value & opt int 4 & info [ "connections"; "c" ] ~docv:"N"
           ~doc:"Concurrent client connections (one domain each).")
  in
  let requests_arg =
    Arg.(value & opt int 200 & info [ "requests"; "n" ] ~docv:"N"
           ~doc:"Total requests across all connections.")
  in
  let rps_arg =
    Arg.(value & opt float 0.0 & info [ "rps" ] ~docv:"R"
           ~doc:"Target request rate; 0 (default) runs closed-loop.")
  in
  let sinks_arg =
    Arg.(value & opt int 16 & info [ "sinks" ] ~docv:"N"
           ~doc:"Sinks per generated tree.")
  in
  let distinct_arg =
    Arg.(value & opt int 10 & info [ "distinct" ] ~docv:"K"
           ~doc:"Distinct trees cycled through the request stream.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Base seed for tree generation.")
  in
  let algo_arg =
    Arg.(value & opt string "wid" & info [ "algo" ] ~docv:"ALGO"
           ~doc:"Algorithm: nom, d2d or wid.")
  in
  let rule_arg =
    Arg.(value & opt string "2p" & info [ "rule" ] ~docv:"RULE"
           ~doc:"Pruning rule: det, 2p, 1p or 4p.")
  in
  let p_arg =
    Arg.(value & opt float 0.5 & info [ "p" ] ~docv:"P"
           ~doc:"The 2P parameters p_L = p_T.")
  in
  let deadline_arg =
    Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-request deadline; 0 = none.")
  in
  let slo_arg =
    Arg.(value & opt float 0.0 & info [ "slo-ms" ] ~docv:"MS"
           ~doc:"Report the fraction of requests answered within MS.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the summary as JSON to FILE.")
  in
  Cmd.v
    (Cmd.info "varbuf-loadgen"
       ~doc:"drive request load at a varbuf-serve daemon or cluster")
    Term.(
      const run $ socket_arg $ tcp_arg $ wire_arg $ conns_arg $ requests_arg
      $ rps_arg $ sinks_arg $ distinct_arg $ seed_arg $ algo_arg $ rule_arg
      $ p_arg $ deadline_arg $ slo_arg $ json_arg)

let () = exit (Cmd.eval' cmd)
