#!/usr/bin/env bash
# Run the full suite with --force and fail if alcotest's reported test
# count drops below the committed floor.  A suite module falling out
# of test/test_main.ml (or a generator collapsing to zero cases)
# otherwise shrinks the suite silently while CI stays green; the count
# makes that a loud failure.  Raise EXPECTED when tests are added.
#
# Extra arguments are forwarded to dune, and the caller's environment
# (VARBUF_OBS, VARBUF_JOBS, ...) reaches the suite unchanged, so CI
# reuses this script for the observability pass.
set -ueo pipefail
cd "$(dirname "$0")/.."

EXPECTED=341

if ! out=$(dune runtest --force "$@" 2>&1); then
  tail -60 <<<"$out"
  echo "FAIL: dune runtest failed" >&2
  exit 1
fi
tail -5 <<<"$out"
count=$(grep -oE '[0-9]+ tests run' <<<"$out" | awk '{print $1}' | tail -1)
if [ -z "${count:-}" ]; then
  echo "FAIL: could not find 'N tests run' in dune runtest output" >&2
  exit 1
fi
if [ "$count" -lt "$EXPECTED" ]; then
  echo "FAIL: $count tests run, expected at least $EXPECTED" >&2
  exit 1
fi
echo "check_test_count: $count tests run (floor $EXPECTED)"
