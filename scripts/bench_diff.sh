#!/usr/bin/env bash
# Compare two BENCH.json snapshots and print ns/op deltas per
# benchmark row (micro, sample, tape, btypes, codec).  Warn-only by
# design: smoke-bench numbers are noisy, so the script always exits 0
# when both files parse — CI runs it against the previous committed
# snapshot purely for the human reading the log.
#
#   scripts/bench_diff.sh OLD.json NEW.json
set -ueo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 OLD.json NEW.json" >&2
  exit 2
fi

python3 - "$1" "$2" <<'EOF'
import json, sys

def rows(path):
    with open(path) as f:
        d = json.load(f)
    out = {}
    for r in d.get("micro", []):
        out["micro/" + r["name"]] = r.get("ns_per_run")
    for r in d.get("sample", {}).get("rows", []):
        out["sample/K=%d" % r["k"]] = r.get("ns_per_op")
    for r in d.get("tape", {}).get("rows", []):
        for kind in ("tree", "cold", "warm"):
            out["tape/%s/%s" % (r["name"], kind)] = r.get(kind + "_ns_per_op")
    for r in d.get("btypes", {}).get("rows", []):
        out["btypes/%s/b=%d" % (r["net"], r["b"])] = r.get("ns_per_op")
    for r in d.get("pareto", {}).get("rows", []):
        out["pareto/%s/eps=%g" % (r["net"], r["eps"])] = r.get("ns_per_op")
    for r in d.get("cluster", {}).get("codec", []):
        out["codec/" + r["name"]] = r.get("ns_per_op")
    return out

old_path, new_path = sys.argv[1], sys.argv[2]
old, new = rows(old_path), rows(new_path)

print("%-40s %14s %14s %9s" % ("benchmark", "old ns/op", "new ns/op", "delta"))
for name in sorted(set(old) | set(new)):
    o, n = old.get(name), new.get(name)
    if o is None or n is None:
        status = "(old only)" if n is None else "(new only)"
        print("%-40s %14s %14s %9s" % (
            name,
            "-" if o is None else "%.0f" % o,
            "-" if n is None else "%.0f" % n,
            status))
    else:
        pct = 100.0 * (n - o) / o if o else float("inf")
        print("%-40s %14.0f %14.0f %+8.1f%%" % (name, o, n, pct))
EOF
