#!/usr/bin/env bash
# End-to-end smoke test of the varbuf-serve daemon (CI's server check):
# start a daemon, send a malformed probe plus a real benchmark request
# on the same connection, verify the saved buffering and the stats
# counters, then drain and check the daemon's own exit status.
set -ueo pipefail
cd "$(dirname "$0")/.."

dune build bin/serve_main.exe
BIN=_build/default/bin/serve_main.exe

SOCK="${TMPDIR:-/tmp}/varbuf-smoke-$$.sock"
BUF="${TMPDIR:-/tmp}/varbuf-smoke-$$.buf"
trap 'rm -f "$SOCK" "$BUF"' EXIT

"$BIN" start --socket "$SOCK" --jobs 2 &
SERVER=$!

for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "FAIL: server socket never appeared"; exit 1; }

# One connection: a malformed request (must be answered with a parse
# error while the connection keeps serving) followed by a real request
# that must produce a parseable buffering within the deadline.
out=$("$BIN" request --socket "$SOCK" --bench r1 --algo wid --rule 2p \
  --deadline-ms 120000 --probe-malformed --save-buffering "$BUF")
echo "$out"
grep -q "probe: error code=parse" <<<"$out"
grep -q "wid/2p: buffers=" <<<"$out"
head -1 "$BUF" | grep -q "# varbuf buffering v1"

stats=$("$BIN" stats --socket "$SOCK")
grep -qx "requests 2" <<<"$stats"
grep -qx "ok 1" <<<"$stats"
grep -qx "error_parse 1" <<<"$stats"
grep -q "^latency_ms_bucket " <<<"$stats"

"$BIN" shutdown --socket "$SOCK"
wait "$SERVER"
[ ! -e "$SOCK" ] || { echo "FAIL: socket not removed on shutdown"; exit 1; }

# ---- sharded cluster: router + 2 workers, Unix socket + TCP ----
# The same net requested through the v1 text protocol on the Unix
# socket and the v2 binary protocol over TCP must produce identical
# bufferings (the second answer comes from the worker's result cache,
# so this also covers the cache-hit path through the router).
dune build bin/loadgen_main.exe
LOADGEN=_build/default/bin/loadgen_main.exe

CSOCK="${TMPDIR:-/tmp}/varbuf-smoke-cluster-$$.sock"
BUF1="${TMPDIR:-/tmp}/varbuf-smoke-$$.buf1"
BUF2="${TMPDIR:-/tmp}/varbuf-smoke-$$.buf2"
PORT=$(( 20000 + RANDOM % 20000 ))
trap 'rm -f "$SOCK" "$BUF" "$CSOCK" "$CSOCK".shard* "$BUF1" "$BUF2"' EXIT

"$BIN" cluster --socket "$CSOCK" --shards 2 --jobs-per-shard 2 --tcp "$PORT" &
CLUSTER=$!

for _ in $(seq 1 100); do [ -S "$CSOCK" ] && break; sleep 0.1; done
[ -S "$CSOCK" ] || { echo "FAIL: cluster socket never appeared"; exit 1; }

"$BIN" request --socket "$CSOCK" --wire v1 --bench r1 --algo wid --rule 2p \
  --deadline-ms 120000 --save-buffering "$BUF1" >/dev/null
"$BIN" request --tcp "$PORT" --wire v2 --bench r1 --algo wid --rule 2p \
  --deadline-ms 120000 --save-buffering "$BUF2" >/dev/null
cmp "$BUF1" "$BUF2" || { echo "FAIL: v1 and v2 bufferings differ"; exit 1; }

# The same pair again in sample mode: the sampling-based yield engine
# served through the router, v1 text vs v2 binary, must agree byte for
# byte and report its sampled yield figures.
sout=$("$BIN" request --socket "$CSOCK" --wire v1 --sinks 12 --seed 5 \
  --algo wid --samples 128 --deadline-ms 120000 --save-buffering "$BUF1")
echo "$sout" | grep -q "sampled driver RAT (K=128)" \
  || { echo "FAIL: v1 sample response missing sampled line"; exit 1; }
"$BIN" request --tcp "$PORT" --wire v2 --sinks 12 --seed 5 \
  --algo wid --samples 128 --deadline-ms 120000 --save-buffering "$BUF2" \
  | grep -q "sampled driver RAT (K=128)" \
  || { echo "FAIL: v2 sample response missing sampled line"; exit 1; }
cmp "$BUF1" "$BUF2" \
  || { echo "FAIL: sample-mode v1 and v2 bufferings differ"; exit 1; }

# Same net, different rule: the rule is part of the response-cache key
# so the worker's result cache misses, but the compiled-tape cache is
# keyed by the topology digest alone — the r1 requests above already
# compiled this tree, so this request must be a tape hit (skipping
# parse-to-tree and compile).  The workers' own stats prove it.
"$BIN" request --tcp "$PORT" --wire v2 --bench r1 --algo wid --rule det \
  --deadline-ms 120000 >/dev/null
thits=0
for ws in "$CSOCK".shard*; do
  wstats=$("$BIN" stats --socket "$ws")
  grep -q "^tape_entries " <<<"$wstats" \
    || { echo "FAIL: worker stats missing tape lines"; exit 1; }
  h=$(awk '$1 == "tape_hits" { print $2 }' <<<"$wstats")
  thits=$(( thits + ${h:-0} ))
done
[ "$thits" -ge 1 ] \
  || { echo "FAIL: no tape-cache hit after same-net replay"; exit 1; }

# A short closed-loop load through the router in v2 binary.
lg=$("$LOADGEN" --socket "$CSOCK" --wire v2 --connections 2 --requests 20 \
  --distinct 4 --sinks 12)
echo "$lg" | head -3
grep -q "^ok 20 " <<<"$lg"

cstats=$("$BIN" stats --tcp "$PORT" --wire v2 --socket "$CSOCK")
grep -qx "cluster_shards 2" <<<"$cstats"
grep -qx "ok 25" <<<"$cstats"
grep -q "^kind_request 25" <<<"$cstats"
grep -q "^cluster_shard_0_links " <<<"$cstats"
grep -q "^cluster_v1_cache_capacity " <<<"$cstats"

"$BIN" shutdown --socket "$CSOCK"
wait "$CLUSTER"
[ ! -e "$CSOCK" ] || { echo "FAIL: cluster socket not removed"; exit 1; }
[ -z "$(ls "$CSOCK".shard* 2>/dev/null)" ] \
  || { echo "FAIL: shard sockets not removed"; exit 1; }

echo "smoke_serve: all checks passed"
