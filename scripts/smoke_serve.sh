#!/usr/bin/env bash
# End-to-end smoke test of the varbuf-serve daemon (CI's server check):
# start a daemon, send a malformed probe plus a real benchmark request
# on the same connection, verify the saved buffering and the stats
# counters, then drain and check the daemon's own exit status.
set -ueo pipefail
cd "$(dirname "$0")/.."

dune build bin/serve_main.exe
BIN=_build/default/bin/serve_main.exe

SOCK="${TMPDIR:-/tmp}/varbuf-smoke-$$.sock"
BUF="${TMPDIR:-/tmp}/varbuf-smoke-$$.buf"
trap 'rm -f "$SOCK" "$BUF"' EXIT

"$BIN" start --socket "$SOCK" --jobs 2 &
SERVER=$!

for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "FAIL: server socket never appeared"; exit 1; }

# One connection: a malformed request (must be answered with a parse
# error while the connection keeps serving) followed by a real request
# that must produce a parseable buffering within the deadline.
out=$("$BIN" request --socket "$SOCK" --bench r1 --algo wid --rule 2p \
  --deadline-ms 120000 --probe-malformed --save-buffering "$BUF")
echo "$out"
grep -q "probe: error code=parse" <<<"$out"
grep -q "wid/2p: buffers=" <<<"$out"
head -1 "$BUF" | grep -q "# varbuf buffering v1"

stats=$("$BIN" stats --socket "$SOCK")
grep -qx "requests 2" <<<"$stats"
grep -qx "ok 1" <<<"$stats"
grep -qx "error_parse 1" <<<"$stats"
grep -q "^latency_ms_bucket " <<<"$stats"

"$BIN" shutdown --socket "$SOCK"
wait "$SERVER"
[ ! -e "$SOCK" ] || { echo "FAIL: socket not removed on shutdown"; exit 1; }

echo "smoke_serve: all checks passed"
